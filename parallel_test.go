package cqa

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"cqa/internal/workload"
)

// parallelTestQueries spans the tetrachotomy: RXRX is FO, RRX is NL
// with a certified decomposition, RRRRRRRRX is PTIME-complete
// (fixpoint), and ARRX is coNP-complete (SAT; its decisions never
// touch the partitioned path, so it doubles as a "nothing engages"
// control).
var parallelTestQueries = []string{"RXRX", "RRX", "RRRRRRRRX", "ARRX"}

// TestEngineParallelEquivalence runs randomized instances through two
// engines — one pinned single-core, one with the partitioned path
// forced on every non-empty instance — and demands identical decisions
// on every (query, instance) pair, with the parallel engine's counters
// proving the sharded path actually ran. Run under -race at -cpu 1,4
// in CI, this is the engine-level half of the equivalence argument
// (the solver-level halves live in internal/fixpoint and internal/nl).
func TestEngineParallelEquivalence(t *testing.T) {
	seq := NewEngine(EngineConfig{SolveWorkers: 1})
	par := NewEngine(EngineConfig{SolveWorkers: 4, ParallelThreshold: -1})

	dbs := map[string]*Instance{
		"small": workload.Random(workload.Config{
			Relations: []string{"R", "X", "Y"}, Constants: 30, Facts: 120,
			ConflictRate: 0.5, Seed: 101,
		}),
		"mid": workload.Random(workload.Config{
			Relations: []string{"R", "X", "Y"}, Constants: 300, Facts: 1500,
			ConflictRate: 0.3, Seed: 102,
		}),
		"figure2": workload.Figure2Family(120),
	}
	ctx := context.Background()
	for _, qs := range parallelTestQueries {
		q := MustParseQuery(qs)
		for name, db := range dbs {
			want, err := seq.CertainCtx(ctx, q, db)
			if err != nil {
				t.Fatalf("%s/%s: sequential: %v", qs, name, err)
			}
			got, err := par.CertainCtx(ctx, q, db)
			if err != nil {
				t.Fatalf("%s/%s: parallel: %v", qs, name, err)
			}
			if got.Certain != want.Certain || got.Method != want.Method {
				t.Errorf("%s/%s: parallel = (%v, %s), sequential = (%v, %s)",
					qs, name, got.Certain, got.Method, want.Certain, want.Method)
			}
		}
	}
	if s := seq.Stats(); s.Parallel.Solves != 0 || s.Parallel.Shards != 0 {
		t.Errorf("single-core engine recorded parallel stats: %+v", s.Parallel)
	}
	if s := par.Stats(); s.Parallel.Solves == 0 || s.Parallel.Shards == 0 {
		t.Errorf("forced-parallel engine recorded no parallel solves: %+v", s.Parallel)
	}
}

// TestEngineParallelBatch exercises the partitioned solver under the
// sharded batch scheduler: concurrent workers sharing plans and memos
// while each decision itself fans out, the shape -race is best at
// breaking.
func TestEngineParallelBatch(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 4, SolveWorkers: 4, ParallelThreshold: -1})
	oracle := NewEngine(EngineConfig{SolveWorkers: 1})
	db1 := workload.Figure2Family(100)
	db2 := workload.Chain(MustParseQuery("RRX").Word(), 200)
	var reqs []Request
	for i := 0; i < 40; i++ {
		q := MustParseQuery(parallelTestQueries[i%len(parallelTestQueries)])
		db := db1
		if i%2 == 0 {
			db = db2
		}
		reqs = append(reqs, Request{Query: q, DB: db})
	}
	for i, res := range eng.CertainBatch(context.Background(), reqs) {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		want, err := oracle.CertainCtx(context.Background(), reqs[i].Query, reqs[i].DB)
		if err != nil {
			t.Fatal(err)
		}
		if res.Certain != want.Certain {
			t.Errorf("request %d (%v): batch = %v, oracle = %v", i, reqs[i].Query, res.Certain, want.Certain)
		}
	}
	if s := eng.Stats(); s.Parallel.Solves == 0 {
		t.Errorf("batch never engaged the partitioned solver: %+v", s.Parallel)
	}
}

// TestEngineParallelThresholdDefault checks the default calibration
// gate: instances below DefaultParallelThreshold stay single-core even
// on a parallel-configured engine.
func TestEngineParallelThresholdDefault(t *testing.T) {
	eng := NewEngine(EngineConfig{SolveWorkers: 8})
	db := workload.Figure2Family(50) // far below 1<<16 facts
	res, err := eng.CertainCtx(context.Background(), MustParseQuery("RRRRRRRRX"), db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if s := eng.Stats(); s.Parallel.Solves != 0 {
		t.Errorf("sub-threshold decision engaged the partitioned solver: %+v", s.Parallel)
	}
}

// TestStatsStringParallelLine pins the third stats line, which `cqa
// batch -stats` prints and the serve daemon logs on drain.
func TestStatsStringParallelLine(t *testing.T) {
	eng := NewEngine(EngineConfig{SolveWorkers: 2, ParallelThreshold: -1})
	eng.CertainCtx(context.Background(), MustParseQuery("RRRRRRRRX"), workload.Figure2Family(40))
	s := eng.Stats()
	line := fmt.Sprintf("parallel: %d solves, %d shards", s.Parallel.Solves, s.Parallel.Shards)
	if s.Parallel.Solves == 0 {
		t.Fatalf("forced decision did not engage: %+v", s.Parallel)
	}
	if got := s.String(); !strings.Contains(got, line) {
		t.Errorf("Stats.String() = %q, want substring %q", got, line)
	}
}
