package cqa

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry errors.
var (
	// ErrInstanceExists is returned by Register for a name already taken.
	ErrInstanceExists = errors.New("cqa: instance already registered")
	// ErrInstanceNotFound is returned for operations on an unknown name.
	ErrInstanceNotFound = errors.New("cqa: instance not found")
)

// Registry holds named, long-lived instances for serving workloads: the
// `cqa serve` daemon registers an instance once and then streams
// queries and mutations against it by name, so the engine's
// per-snapshot memos stay warm across requests instead of being rebuilt
// per process. A Registry is safe for concurrent use.
//
// Concurrency contract: an Instance is safe for concurrent reads but a
// mutation must not race with readers or other mutations, so the
// registry wraps each instance in a read-write lock — queries evaluate
// under the read lock (any number in parallel), Mutate takes the write
// lock. Each mutation publishes a fresh interned snapshot that is a
// structural delta of its parent, so the first post-mutation decision
// is a lineage repair of the warm memo entry, not a cold build; the
// lineage depth in InstanceInfo exposes how far the current snapshot
// has drifted from its last cold build.
type Registry struct {
	eng *Engine

	mu    sync.RWMutex
	insts map[string]*managed
}

// managed is one registered instance plus its lock and counters.
type managed struct {
	name string
	// mu orders mutations against reads; the registry's own map lock is
	// never held during evaluation.
	mu sync.RWMutex
	db *Instance

	queries   atomic.Uint64
	mutations atomic.Uint64
}

// InstanceInfo is a point-in-time description of a registered instance.
type InstanceInfo struct {
	Name string `json:"name"`
	// Facts is the current fact count.
	Facts int `json:"facts"`
	// LineageDepth is the delta-chain length from the current interned
	// snapshot back to its nearest ancestral full snapshot: 0 right
	// after registration, +1 per mutation batch until a tier memo
	// collapses the chain with a cold build.
	LineageDepth int `json:"lineage_depth"`
	// Queries and Mutations count operations served since registration.
	Queries   uint64 `json:"queries"`
	Mutations uint64 `json:"mutations"`
}

// Mutation is one atomic batch of fact changes applied by
// Registry.Mutate: removals first, then additions, under one write
// lock, publishing a single new snapshot.
type Mutation struct {
	Add    []Fact `json:"add,omitempty"`
	Remove []Fact `json:"remove,omitempty"`
}

// NewRegistry returns a Registry evaluating on eng; a nil eng gets a
// default-configured engine.
func NewRegistry(eng *Engine) *Registry {
	if eng == nil {
		eng = NewEngine(EngineConfig{})
	}
	return &Registry{eng: eng, insts: make(map[string]*managed)}
}

// Engine returns the engine the registry evaluates on.
func (r *Registry) Engine() *Engine { return r.eng }

// Register adds db under name. The registry takes ownership of db: the
// caller must not mutate it directly afterwards (use Mutate, which
// orders mutations against in-flight queries).
func (r *Registry) Register(name string, db *Instance) error {
	if name == "" {
		return fmt.Errorf("cqa: empty instance name")
	}
	if db == nil {
		db = NewInstance()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.insts[name]; ok {
		return fmt.Errorf("%w: %q", ErrInstanceExists, name)
	}
	r.insts[name] = &managed{name: name, db: db}
	return nil
}

// Drop removes the named instance, reporting whether it existed.
// In-flight operations on it complete normally.
func (r *Registry) Drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.insts[name]; !ok {
		return false
	}
	delete(r.insts, name)
	return true
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.insts))
	for name := range r.insts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) lookup(name string) (*managed, error) {
	r.mu.RLock()
	m := r.insts[name]
	r.mu.RUnlock()
	if m == nil {
		return nil, fmt.Errorf("%w: %q", ErrInstanceNotFound, name)
	}
	return m, nil
}

// Info returns the named instance's description.
func (r *Registry) Info(name string) (InstanceInfo, error) {
	m, err := r.lookup(name)
	if err != nil {
		return InstanceInfo{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.info(), nil
}

// info snapshots the counters; callers hold m.mu (either mode).
func (m *managed) info() InstanceInfo {
	return InstanceInfo{
		Name:         m.name,
		Facts:        m.db.Size(),
		LineageDepth: m.db.Interned().LineageDepth(),
		Queries:      m.queries.Load(),
		Mutations:    m.mutations.Load(),
	}
}

// Infos returns the description of every registered instance, sorted
// by name — the registry section of the serve daemon's /metrics.
func (r *Registry) Infos() []InstanceInfo {
	names := r.Names()
	infos := make([]InstanceInfo, 0, len(names))
	for _, name := range names {
		if info, err := r.Info(name); err == nil {
			infos = append(infos, info)
		}
	}
	return infos
}

// Query decides CERTAINTY(q) on the named instance under its read
// lock, so it never observes a half-applied mutation.
func (r *Registry) Query(ctx context.Context, name string, q Query, opts Options) (Result, error) {
	m, err := r.lookup(name)
	if err != nil {
		return Result{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.queries.Add(1)
	return r.eng.CertainOptCtx(ctx, q, m.db, opts)
}

// QueryBatch decides a run of queries against the named instance under
// one read lock acquisition, sequentially — consecutive decisions on
// the same snapshot are exactly the memo-warm pattern the engine's
// snapshot-affine sharding produces, without cross-worker handoff for
// what is a single caller's stream. Evaluation stops at the first
// context error; results before it are returned with a short count.
func (r *Registry) QueryBatch(ctx context.Context, name string, queries []Query, opts Options) ([]Result, error) {
	m, err := r.lookup(name)
	if err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Result, 0, len(queries))
	for _, q := range queries {
		res, err := r.eng.CertainOptCtx(ctx, q, m.db, opts)
		if err != nil && ctx.Err() != nil {
			return out, err
		}
		m.queries.Add(1)
		res.Err = err
		out = append(out, res)
	}
	return out, nil
}

// BatchItem is one query of a QueryBatchItems run, optionally carrying
// its own deadline. A zero Deadline means the batch context alone
// governs the item.
type BatchItem struct {
	Query Query
	// Deadline is the item's absolute deadline. An item whose deadline
	// has already passed when its turn comes — typically because the
	// batch sat in a serving queue — is answered with a deadline error
	// without being evaluated: no memo lookup, no cold build, no query
	// counted.
	Deadline time.Time
}

// QueryBatchItems is QueryBatch with per-item deadlines: the serve
// daemon's NDJSON batch path, where each request line may carry its own
// timeout_ms. Items are evaluated sequentially under one read lock like
// QueryBatch; an item with a live deadline evaluates under a context
// bounded by it (its expiry errors only that item), while an item whose
// deadline has already passed is answered with context.DeadlineExceeded
// without ever being evaluated. Evaluation stops at the first
// batch-context error; results before it are returned with a short
// count.
func (r *Registry) QueryBatchItems(ctx context.Context, name string, items []BatchItem, opts Options) ([]Result, error) {
	m, err := r.lookup(name)
	if err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Result, 0, len(items))
	for _, it := range items {
		ictx := ctx
		var cancel context.CancelFunc
		if !it.Deadline.IsZero() {
			if !time.Now().Before(it.Deadline) {
				out = append(out, Result{Err: fmt.Errorf("deadline expired before evaluation: %w", context.DeadlineExceeded)})
				continue
			}
			ictx, cancel = context.WithDeadline(ctx, it.Deadline)
		}
		res, err := r.eng.CertainOptCtx(ictx, it.Query, m.db, opts)
		if cancel != nil {
			cancel()
		}
		if err != nil && ctx.Err() != nil {
			return out, err
		}
		m.queries.Add(1)
		res.Err = err
		out = append(out, res)
	}
	return out, nil
}

// Mutate applies the mutation atomically under the instance's write
// lock: removals, then additions, publishing one new interned snapshot
// that the tier memos repair from its parent on the next decision. It
// returns the post-mutation description.
func (r *Registry) Mutate(name string, mut Mutation) (InstanceInfo, error) {
	m, err := r.lookup(name)
	if err != nil {
		return InstanceInfo{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range mut.Remove {
		m.db.Remove(f)
	}
	for _, f := range mut.Add {
		m.db.Add(f)
	}
	m.mutations.Add(1)
	return m.info(), nil
}
