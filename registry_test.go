package cqa

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(nil)
	if err := r.Register("", NewInstance()); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Register("beta", churnInstance(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("alpha", churnInstance(2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("alpha", NewInstance()); !errors.Is(err, ErrInstanceExists) {
		t.Fatalf("duplicate register: got %v, want ErrInstanceExists", err)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Names() = %v, want sorted [alpha beta]", got)
	}

	info, err := r.Info("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "alpha" || info.Facts == 0 || info.LineageDepth != 0 ||
		info.Queries != 0 || info.Mutations != 0 {
		t.Fatalf("fresh info = %+v", info)
	}
	if _, err := r.Info("gamma"); !errors.Is(err, ErrInstanceNotFound) {
		t.Fatalf("Info on missing: got %v, want ErrInstanceNotFound", err)
	}

	infos := r.Infos()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("Infos() = %+v", infos)
	}

	if !r.Drop("beta") {
		t.Fatal("Drop(beta) = false")
	}
	if r.Drop("beta") {
		t.Fatal("second Drop(beta) = true")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("Names() after drop = %v", got)
	}
}

func TestRegistryRegisterNilGetsEmptyInstance(t *testing.T) {
	r := NewRegistry(nil)
	if err := r.Register("empty", nil); err != nil {
		t.Fatal(err)
	}
	info, err := r.Info("empty")
	if err != nil {
		t.Fatal(err)
	}
	if info.Facts != 0 {
		t.Fatalf("nil-register facts = %d, want 0", info.Facts)
	}
	// An empty consistent instance trivially satisfies no path query.
	res, err := r.Query(context.Background(), "empty", MustParseQuery("RRX"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certain {
		t.Fatal("empty instance decided certain")
	}
}

// TestRegistryQueryMatchesDirect checks registry decisions against the
// engine evaluating the same instance directly, across all four tiers.
func TestRegistryQueryMatchesDirect(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	r := NewRegistry(eng)
	db := churnInstance(7)
	ref := db.Clone()
	if err := r.Register("db", db); err != nil {
		t.Fatal(err)
	}
	words := []string{"RXRX", "RRX", "RXRYRY", "ARRX"}
	for _, w := range words {
		q := MustParseQuery(w)
		got, err := r.Query(context.Background(), "db", q, Options{})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		want := Certain(q, ref)
		if got.Certain != want.Certain {
			t.Errorf("%s: registry=%v direct=%v", w, got.Certain, want.Certain)
		}
	}
	info, _ := r.Info("db")
	if info.Queries != uint64(len(words)) {
		t.Errorf("query counter = %d, want %d", info.Queries, len(words))
	}
	if _, err := r.Query(context.Background(), "nope", MustParseQuery("RRX"), Options{}); !errors.Is(err, ErrInstanceNotFound) {
		t.Fatalf("Query on missing: got %v, want ErrInstanceNotFound", err)
	}
}

func TestRegistryQueryBatch(t *testing.T) {
	r := NewRegistry(NewEngine(EngineConfig{}))
	db := churnInstance(3)
	ref := db.Clone()
	if err := r.Register("db", db); err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		MustParseQuery("RXRX"),
		MustParseQuery("ARRX"),
		MustParseQuery("RRX"),
		MustParseQuery("RXRX"),
	}
	out, err := r.QueryBatch(context.Background(), "db", queries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(queries) {
		t.Fatalf("got %d results, want %d", len(out), len(queries))
	}
	for i, res := range out {
		if res.Err != nil {
			t.Fatalf("result %d: %v", i, res.Err)
		}
		if want := Certain(queries[i], ref); res.Certain != want.Certain {
			t.Errorf("result %d: batch=%v direct=%v", i, res.Certain, want.Certain)
		}
	}

	// A canceled context stops the batch with a short count.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err = r.QueryBatch(ctx, "db", queries, Options{})
	if err == nil {
		t.Fatal("canceled batch returned nil error")
	}
	if len(out) != 0 {
		t.Fatalf("canceled batch returned %d results, want 0", len(out))
	}

	if _, err := r.QueryBatch(context.Background(), "nope", queries, Options{}); !errors.Is(err, ErrInstanceNotFound) {
		t.Fatalf("QueryBatch on missing: got %v, want ErrInstanceNotFound", err)
	}
}

// TestRegistryMutate checks atomic remove-then-add ordering and that an
// in-universe mutation extends the lineage chain instead of resetting
// it (the repair path serving clients depend on).
func TestRegistryMutate(t *testing.T) {
	r := NewRegistry(NewEngine(EngineConfig{}))
	db := churnInstance(5)
	if err := r.Register("db", db); err != nil {
		t.Fatal(err)
	}
	// Warm the memo so the lineage chain has a resident root.
	if _, err := r.Query(context.Background(), "db", MustParseQuery("ARRX"), Options{}); err != nil {
		t.Fatal(err)
	}

	f := Fact{Rel: "R", Key: "a", Val: "e"}
	// Remove-then-add of the same fact must leave it present: removals
	// run first, so the add wins within one mutation.
	info, err := r.Mutate("db", Mutation{Add: []Fact{f}, Remove: []Fact{f}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Mutations != 1 {
		t.Errorf("mutation counter = %d, want 1", info.Mutations)
	}
	if !db.Contains(f) {
		t.Error("remove-then-add dropped the fact: wrong application order")
	}
	if info.LineageDepth == 0 {
		t.Errorf("in-universe mutation reset the lineage chain: %+v", info)
	}

	if _, err := r.Mutate("nope", Mutation{}); !errors.Is(err, ErrInstanceNotFound) {
		t.Fatalf("Mutate on missing: got %v, want ErrInstanceNotFound", err)
	}
}

// TestRegistryConcurrentChurn runs concurrent queries and mutations
// against one registered instance; the registry's per-instance RWMutex
// must keep them from racing (run with -race). Decisions are checked
// for internal consistency per snapshot via QueryBatch, which holds the
// read lock across the whole run.
func TestRegistryConcurrentChurn(t *testing.T) {
	r := NewRegistry(NewEngine(EngineConfig{}))
	if err := r.Register("db", churnInstance(11)); err != nil {
		t.Fatal(err)
	}
	consts := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	rels := []string{"A", "R", "X", "Y"}
	queries := []Query{
		MustParseQuery("RXRX"),
		MustParseQuery("RRX"),
		MustParseQuery("RXRYRY"),
		MustParseQuery("ARRX"),
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 60; i++ {
			f := Fact{
				Rel: rels[rng.Intn(len(rels))],
				Key: consts[rng.Intn(len(consts))],
				Val: consts[rng.Intn(len(consts))],
			}
			var mut Mutation
			if rng.Intn(2) == 0 {
				mut.Add = []Fact{f}
			} else {
				mut.Remove = []Fact{f}
			}
			if _, err := r.Mutate("db", mut); err != nil {
				t.Errorf("mutate: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				out, err := r.QueryBatch(context.Background(), "db", queries, Options{})
				if err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				for j, res := range out {
					if res.Err != nil {
						t.Errorf("batch result %d: %v", j, res.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
