package cqa

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/instance"
	"cqa/internal/repairs"
)

func TestClassifyExamples(t *testing.T) {
	cases := map[string]Class{
		"RXRX": FO, "RXRY": NL, "RXRYRY": PTime, "RXRXRYRY": CoNP,
		"RR": FO, "RRX": NL, "ARRX": CoNP,
	}
	for qs, want := range cases {
		if got := Classify(MustParseQuery(qs)); got != want {
			t.Errorf("Classify(%s) = %v, want %v", qs, got, want)
		}
	}
}

func TestCertainDispatch(t *testing.T) {
	fig2, _ := ParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	res := Certain(MustParseQuery("RRX"), fig2)
	if !res.Certain || res.Method != MethodNL {
		t.Errorf("Figure 2: %+v", res)
	}

	fig3, _ := ParseFacts("A(0,a) R(a,b) R(a,c) R(b,c) R(c,b) X(c,t)")
	res = Certain(MustParseQuery("ARRX"), fig3)
	if res.Certain || res.Method != MethodSAT {
		t.Errorf("Figure 3: %+v", res)
	}
	// Counterexamples are materialized on demand only (the SAT tier
	// decodes its model to interned ids; the string-keyed repair is
	// built under WantCounterexample).
	if res.Counterexample != nil {
		t.Errorf("Figure 3: unexpected eager counterexample %v", res.Counterexample)
	}
	resCex, err := CertainOpt(MustParseQuery("ARRX"), fig3, Options{WantCounterexample: true})
	if err != nil {
		t.Fatal(err)
	}
	if resCex.Counterexample == nil || !resCex.Counterexample.IsRepairOf(fig3) ||
		resCex.Counterexample.Satisfies(MustParseQuery("ARRX").Word()) {
		t.Errorf("Figure 3 with WantCounterexample: bad counterexample %v", resCex.Counterexample)
	}

	chain, _ := ParseFacts("R(a,b) R(b,c)")
	res = Certain(MustParseQuery("RR"), chain)
	if !res.Certain || res.Method != MethodFO {
		t.Errorf("RR chain: %+v", res)
	}

	res = Certain(MustParseQuery("RXRYRY"), NewInstance())
	if res.Certain || res.Method != MethodFixpoint {
		t.Errorf("empty instance: %+v", res)
	}
}

func TestAllMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := []Query{
		MustParseQuery("RR"), MustParseQuery("RRX"), MustParseQuery("RXRYRY"),
		MustParseQuery("ARRX"), MustParseQuery("RXRX"),
	}
	for it := 0; it < 150; it++ {
		db := NewInstance()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X", "Y", "A"}[rng.Intn(4)]
			db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
		}
		for _, q := range queries {
			want := repairs.IsCertain(db, q.Word())
			auto := Certain(q, db)
			if auto.Certain != want {
				t.Fatalf("it=%d q=%v db=%s: auto(%s)=%v want=%v", it, q, db, auto.Method, auto.Certain, want)
			}
			// Every sound forced method must agree.
			for _, m := range []Method{MethodFO, MethodNL, MethodFixpoint, MethodSAT, MethodExhaustive} {
				res, err := CertainOpt(q, db, Options{Force: m})
				if err != nil {
					continue // unsound for this class
				}
				if res.Certain != want {
					t.Fatalf("it=%d q=%v db=%s method=%s: got %v want %v", it, q, db, m, res.Certain, want)
				}
			}
		}
	}
}

func TestForcedMethodSoundness(t *testing.T) {
	db, _ := ParseFacts("R(a,b)")
	if _, err := CertainOpt(MustParseQuery("ARRX"), db, Options{Force: MethodFO}); err == nil {
		t.Error("FO rewriting must be refused for a coNP query")
	}
	if _, err := CertainOpt(MustParseQuery("RXRYRY"), db, Options{Force: MethodNL}); err == nil {
		t.Error("NL tier must be refused for a PTIME-complete query")
	}
	if _, err := CertainOpt(MustParseQuery("ARRX"), db, Options{Force: MethodFixpoint}); err == nil {
		t.Error("fixpoint must be refused for a coNP query")
	}
	if _, err := CertainOpt(MustParseQuery("RR"), db, Options{Force: Method("bogus")}); err == nil {
		t.Error("unknown method must error")
	}
}

func TestWantCounterexample(t *testing.T) {
	db, _ := ParseFacts("R(a,b) R(a,c) X(b,z)")
	q := MustParseQuery("RX")
	res, err := CertainOpt(q, db, Options{WantCounterexample: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certain {
		t.Fatal("not certain")
	}
	if res.Counterexample == nil || !res.Counterexample.IsRepairOf(db) {
		t.Errorf("bad counterexample: %v", res.Counterexample)
	}
	if res.Counterexample.Satisfies(q.Word()) {
		t.Error("counterexample satisfies q")
	}
}

func TestRewrite(t *testing.T) {
	s, err := Rewrite(MustParseQuery("RR"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"∃", "∀", "R("} {
		if !strings.Contains(s, want) {
			t.Errorf("rewriting %q missing %q", s, want)
		}
	}
	if _, err := Rewrite(MustParseQuery("RRX")); err == nil {
		t.Error("RRX has no FO rewriting")
	}
}

func TestRewindLanguage(t *testing.T) {
	got := RewindLanguage(MustParseQuery("RRX"), 5)
	if len(got) != 3 || got[0] != "RRX" {
		t.Errorf("RewindLanguage = %v", got)
	}
}

func TestCountRepairs(t *testing.T) {
	db, _ := ParseFacts("R(a,b) R(a,c) S(a,b) S(a,c) S(a,d)")
	if got := CountRepairs(db); got != "6" {
		t.Errorf("CountRepairs = %s", got)
	}
}

func TestWitnessOnFixpointYes(t *testing.T) {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	res, err := CertainOpt(MustParseQuery("RRX"), db, Options{Force: MethodFixpoint})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certain || res.Witness != "0" {
		t.Errorf("witness = %q, want 0", res.Witness)
	}
}
